// Command dapple plans and simulates hybrid data/pipeline-parallel training
// for the benchmark models on the paper's cluster configurations.
//
// Usage:
//
//	dapple -model BERT-48 -config A -servers 2
//	dapple -model GNMT-16 -config C -servers 16 -gbs 2048 -policy pb
//	dapple -model VGG-19 -config A -gantt -trace out.json
//	dapple -models          # list zoo models
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"dapple/internal/core"
	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/schedule"
	"dapple/internal/stats"
	"dapple/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "BERT-48", "zoo model name (see -models)")
		config    = flag.String("config", "A", "hardware config: A, B or C (Table III)")
		servers   = flag.Int("servers", 0, "server count (default: 2 for A, 16 for B/C)")
		gbs       = flag.Int("gbs", 0, "global batch size (default: model's)")
		policy    = flag.String("policy", "", "schedule policy: pa, pb or gpipe (default: planner's recommendation)")
		recompute = flag.Bool("recompute", false, "force activation re-computation")
		gantt     = flag.Bool("gantt", false, "print the simulated timeline")
		traceOut  = flag.String("trace", "", "write Chrome trace JSON to this file")
		planOut   = flag.String("plan-out", "", "write the chosen plan as JSON to this file")
		planIn    = flag.String("plan-in", "", "skip planning: load a plan JSON written by -plan-out")
		listAll   = flag.Bool("models", false, "list zoo models and exit")
	)
	flag.Parse()

	if *listAll {
		for _, m := range model.Zoo() {
			fmt.Println(m)
		}
		return
	}

	m := model.ByName(*modelName)
	if m == nil {
		fatalf("unknown model %q; use -models", *modelName)
	}
	c, err := pickConfig(*config, *servers)
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("model:   %v\n", m)
	fmt.Printf("cluster: %v\n", c)

	var plan *core.Plan
	pol := schedule.DapplePA
	needRC := false
	if *planIn != "" {
		data, err := os.ReadFile(*planIn)
		if err != nil {
			fatalf("read plan: %v", err)
		}
		plan, err = core.UnmarshalPlan(data, m, c)
		if err != nil {
			fatalf("load plan: %v", err)
		}
		fmt.Printf("plan:    %v (loaded from %s)\n", plan, *planIn)
	} else {
		pr, err := planner.Plan(m, c, planner.Options{GBS: *gbs})
		if err != nil {
			fatalf("planning failed: %v", err)
		}
		plan, pol, needRC = pr.Plan, pr.Policy, pr.NeedsRecompute
		fmt.Printf("plan:    %v (policy %v)\n", pr, pr.Policy)
		if pr.NeedsRecompute {
			fmt.Println("         (requires activation re-computation to fit memory)")
		}
	}
	if *planOut != "" {
		data, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			fatalf("encode plan: %v", err)
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			fatalf("write plan: %v", err)
		}
		fmt.Printf("wrote plan to %s\n", *planOut)
	}

	if *policy != "" {
		var ok bool
		pol, ok = map[string]schedule.Policy{
			"pa": schedule.DapplePA, "pb": schedule.DapplePB, "gpipe": schedule.GPipe,
		}[strings.ToLower(*policy)]
		if !ok {
			fatalf("unknown policy %q (want pa, pb or gpipe)", *policy)
		}
	}
	res, err := schedule.Run(plan, schedule.Options{
		Policy:    pol,
		Recompute: *recompute || needRC,
	})
	if err != nil {
		fatalf("simulation failed: %v", err)
	}
	fmt.Printf("runtime: %s/iter, %.1f samples/s, bubbles %.1f%%\n",
		stats.Seconds(res.IterTime), res.Throughput(), 100*res.BubbleFraction)
	fmt.Printf("memory:  avg peak %s, max peak %s", stats.BytesF(res.AvgPeakMem), stats.Bytes(res.MaxPeakMem))
	if res.OOM {
		fmt.Printf("  ** OOM on stage %d **", res.OOMStage)
	}
	fmt.Println()
	for i, st := range res.PerStage {
		fmt.Printf("  stage %d: peak %s (static %s), util %.0f%%, warmup K=%d\n",
			i, stats.Bytes(st.PeakMem), stats.Bytes(st.StaticMem), 100*st.Utilization, st.Warmup)
	}

	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Sim, 120))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("create trace: %v", err)
		}
		defer f.Close()
		if err := trace.WriteChrome(f, res.Sim); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}
}

func pickConfig(name string, servers int) (hardware.Cluster, error) {
	switch strings.ToUpper(name) {
	case "A":
		if servers == 0 {
			servers = 2
		}
		return hardware.ConfigA(servers), nil
	case "B":
		if servers == 0 {
			servers = 16
		}
		return hardware.ConfigB(servers), nil
	case "C":
		if servers == 0 {
			servers = 16
		}
		return hardware.ConfigC(servers), nil
	}
	return hardware.Cluster{}, fmt.Errorf("unknown config %q (want A, B or C)", name)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
