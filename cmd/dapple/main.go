// Command dapple plans and simulates hybrid data/pipeline-parallel training
// for the benchmark models on the paper's cluster configurations, and can
// really execute the chosen plan on the concurrent mini-runtime. Planning
// goes through the engine API, so any registered strategy — the DAPPLE
// planner or one of the paper's baselines — runs through the same path.
//
// Usage:
//
//	dapple -model BERT-48 -config A -servers 2
//	dapple -model GNMT-16 -config B -strategy pipedream
//	dapple -model GNMT-16 -config C -servers 16 -gbs 2048 -policy pb
//	dapple -model VGG-19 -config A -gantt -trace out.json
//	dapple -execute -config B -servers 4 -gbs 128 -seed 7
//	dapple -models              # list zoo models
//	dapple -strategies          # list registered strategies
//
// With -execute the command profiles a real synthetic MLP instead of a zoo
// model (-model is ignored), plans it, simulates the plan, then really runs
// the planned pipeline — goroutines as devices, channels as links — checks
// the gradients against sequential training, and verifies the real
// per-device event order against the simulated schedule.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"time"

	"dapple"
	"dapple/internal/cliutil"
	"dapple/internal/core"
	"dapple/internal/nn"
	"dapple/internal/stats"
	"dapple/internal/trace"
	"dapple/internal/train"
	"dapple/internal/transport"
)

// Synthetic problem geometry of -execute: inputs project onto two latent
// axes; the class is the quadrant.
const (
	execInDim   = 16
	execClasses = 4
)

func main() {
	var (
		modelName  = flag.String("model", "BERT-48", "zoo model name (see -models)")
		config     = flag.String("config", "A", cliutil.ConfigHelp)
		servers    = flag.Int("servers", 0, "server count (default: 2 for A, 16 for B/C)")
		gbs        = flag.Int("gbs", 0, "global batch size (default: model's)")
		strategy   = flag.String("strategy", "dapple", "planning strategy (see -strategies)")
		policy     = flag.String("policy", "", cliutil.PolicyHelp+" (default: strategy's recommendation)")
		recompute  = flag.Bool("recompute", false, "force activation re-computation")
		timeout    = flag.Duration("timeout", 0, "abort planning/simulation after this long (0 = no limit)")
		gantt      = flag.Bool("gantt", false, "print the simulated timeline")
		traceOut   = flag.String("trace", "", "write Chrome trace JSON to this file")
		planOut    = flag.String("plan-out", "", "write the chosen plan as JSON to this file")
		planIn     = flag.String("plan-in", "", "skip planning: load a plan JSON written by -plan-out")
		listAll    = flag.Bool("models", false, "list zoo models and exit")
		listStrats = flag.Bool("strategies", false, "list registered strategies and exit")
		execute    = flag.Bool("execute", false, "really execute the plan on a synthetic MLP with the concurrent runtime (-model is ignored)")
		execHidden = flag.Int("exec-hidden", 3, "hidden layers of the -execute MLP")
		execWidth  = flag.Int("exec-width", 64, "hidden width of the -execute MLP")
		execIters  = flag.Int("exec-iters", 5, "training iterations to really execute")
		execWkrs   = flag.String("exec-workers", "", "with -execute: run as the coordinator of a multi-process session over these comma-separated dapple-worker addresses (rank order)")
		heartbeat  = flag.Duration("heartbeat", 500*time.Millisecond, "with -exec-workers: liveness heartbeat interval; silent ranks are declared dead after 10 intervals (0 disables)")
		ckptDir    = flag.String("checkpoint-dir", "", "with -exec-workers: persist consistent snapshots here and resume from the latest on start")
		ckptEvery  = flag.Int("checkpoint-every", 1, "with -exec-workers and -checkpoint-dir: snapshot every N steps")
		ckptKeep   = flag.Int("checkpoint-keep", 0, "with -checkpoint-dir: prune all but the newest N snapshots after each save (0 keeps everything)")
		elastic    = flag.Bool("elastic", false, "with -exec-workers: listen for dapple-worker -join knocks and admit replacements into the running session")
		coordLis   = flag.String("coord-listen", "127.0.0.1:0", "with -elastic: coordinator listen address for joiners")
		minRanks   = flag.Int("min-ranks", 0, "with -elastic: before each step, wait for joiners until at least this many worker ranks are live (0 never waits)")
		measured   = flag.Bool("measured-profile", false, "with -execute: calibrate per-layer times by measuring warm real execution instead of the analytic FLOP model")
		measIters  = flag.Int("measure-iters", 5, "with -measured-profile: recorded calibration iterations aggregated per layer")
	)
	planFlags := cliutil.RegisterPlanFlags()
	profFlags := cliutil.RegisterProfileFlags()
	seed := cliutil.RegisterSeedFlag()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fatalf("%v", err)
	}
	defer stopProf()

	if *listAll {
		for _, m := range dapple.Zoo() {
			fmt.Println(m)
		}
		return
	}
	if *listStrats {
		for _, s := range dapple.Strategies() {
			fmt.Printf("%-10s %s\n", s.Name(), s.Describe())
		}
		return
	}

	c, err := cliutil.PickConfig(*config, *servers)
	if err != nil {
		fatalf("%v", err)
	}
	engOpts := []dapple.EngineOption{
		dapple.WithCluster(c),
		dapple.WithStrategy(*strategy),
	}
	if *measured {
		engOpts = append(engOpts, dapple.WithMeasuredProfile(dapple.MeasureOptions{Iters: *measIters}))
	}
	eng, err := dapple.NewEngine(engOpts...)
	if err != nil {
		fatalf("%v", err)
	}

	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	var m *dapple.Model
	var master *dapple.Network
	if *execute {
		// Plan-then-execute mode: the model is a real network, profiled
		// through the engine's configured mode — analytic by default,
		// measured (calibrated by warm real execution) with
		// -measured-profile. The measured loop is the paper's profiler:
		// calibrate, re-plan on measured costs, then really execute.
		dims := []int{execInDim}
		for i := 0; i < *execHidden; i++ {
			dims = append(dims, *execWidth)
		}
		dims = append(dims, execClasses)
		master = dapple.NewMLP(dims, *seed)
		m, err = eng.ProfileNetwork(ctx,
			fmt.Sprintf("mlp-h%d-w%d", *execHidden, *execWidth), master, execInDim, 16, 128)
		if err != nil {
			fatalf("profile network: %v", err)
		}
		if *measured {
			fmt.Println("profile: measured (per-layer times calibrated from warm real execution)")
		} else {
			fmt.Println("profile: analytic (synthetic FLOP model; -measured-profile to calibrate)")
		}
	} else {
		m = dapple.ModelByName(*modelName)
		if m == nil {
			fatalf("unknown model %q; use -models", *modelName)
		}
	}

	fmt.Printf("model:   %v\n", m)
	fmt.Printf("cluster: %v\n", c)

	var plan *dapple.Plan
	pol := dapple.DapplePA
	needRC := false
	if *planIn != "" {
		data, err := os.ReadFile(*planIn)
		if err != nil {
			fatalf("read plan: %v", err)
		}
		plan, err = core.UnmarshalPlan(data, m, c)
		if err != nil {
			fatalf("load plan: %v", err)
		}
		fmt.Printf("plan:    %v (loaded from %s)\n", plan, *planIn)
	} else {
		start := time.Now()
		pr, err := eng.PlanWith(ctx, m, planFlags.Apply(dapple.PlanOptions{GBS: *gbs}))
		if err != nil {
			fatalf("planning failed: %v", err)
		}
		plan, pol, needRC = pr.Plan, pr.Policy, pr.NeedsRecompute
		fmt.Printf("plan:    %v (strategy %s, policy %v, %.1fs)\n",
			pr, pr.Strategy, pr.Policy, time.Since(start).Seconds())
		if pr.NeedsRecompute {
			fmt.Println("         (requires activation re-computation to fit memory)")
		}
	}
	if *planOut != "" {
		data, err := json.MarshalIndent(plan, "", "  ")
		if err != nil {
			fatalf("encode plan: %v", err)
		}
		if err := os.WriteFile(*planOut, data, 0o644); err != nil {
			fatalf("write plan: %v", err)
		}
		fmt.Printf("wrote plan to %s\n", *planOut)
	}

	if *policy != "" {
		pol, err = cliutil.ParsePolicy(*policy)
		if err != nil {
			fatalf("%v", err)
		}
	}
	rc := *recompute || needRC
	res, err := eng.Simulate(ctx, plan, dapple.ScheduleOptions{
		Policy:    pol,
		Recompute: rc,
	})
	if err != nil {
		fatalf("simulation failed: %v", err)
	}
	fmt.Printf("runtime: %s/iter, %.1f samples/s, bubbles %.1f%%\n",
		stats.Seconds(res.IterTime), res.Throughput(), 100*res.BubbleFraction)
	fmt.Printf("memory:  avg peak %s, max peak %s", stats.BytesF(res.AvgPeakMem), stats.Bytes(res.MaxPeakMem))
	if res.OOM {
		fmt.Printf("  ** OOM on stage %d **", res.OOMStage)
	}
	fmt.Println()
	for i, st := range res.PerStage {
		fmt.Printf("  stage %d: peak %s (static %s), util %.0f%%, warmup K=%d\n",
			i, stats.Bytes(st.PeakMem), stats.Bytes(st.StaticMem), 100*st.Utilization, st.Warmup)
	}

	if *gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(res.Sim, 120))
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatalf("create trace: %v", err)
		}
		defer f.Close()
		if err := trace.WriteChrome(f, res.Sim); err != nil {
			fatalf("write trace: %v", err)
		}
		fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
	}

	if *execute {
		if *execWkrs != "" {
			// Survivor re-plan: a fresh engine on the shrunk cluster (the
			// surviving workers' servers) re-runs the same strategy. The
			// planner derives the micro-batch size from model and GBS alone,
			// so a same-GBS re-plan keeps the data feed's shape.
			replan := func(alive []int) (*dapple.Plan, []int, error) {
				c2 := c
				c2.Servers = len(alive)
				eng2, err := dapple.NewEngine(dapple.WithCluster(c2), dapple.WithStrategy(*strategy))
				if err != nil {
					return nil, nil, err
				}
				pr, err := eng2.PlanWith(ctx, m, planFlags.Apply(dapple.PlanOptions{GBS: plan.GBS}))
				if err != nil {
					return nil, nil, err
				}
				if pr.Plan.MicroBatch != plan.MicroBatch || pr.Plan.GBS != plan.GBS {
					return nil, nil, fmt.Errorf("re-plan changed the batch geometry (%d/%d vs %d/%d)",
						pr.Plan.GBS, pr.Plan.MicroBatch, plan.GBS, plan.MicroBatch)
				}
				dr := make([]int, pr.Plan.Cluster.NumDevices())
				for d := range dr {
					dr[d] = alive[pr.Plan.Cluster.Server(dapple.DeviceID(d))%len(alive)]
				}
				fmt.Printf("recover: re-planned onto %d surviving workers: %v\n", len(alive), pr.Plan)
				return pr.Plan, dr, nil
			}
			ft := faultTolerance{heartbeat: *heartbeat, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
				ckptKeep: *ckptKeep, replan: replan,
				elastic: *elastic, coordListen: *coordLis, minRanks: *minRanks}
			runPlanDistributed(ctx, master, plan, pol, rc, *execIters, *seed, strings.Split(*execWkrs, ","), ft)
		} else {
			runPlan(ctx, master, plan, res, pol, rc, *execIters, *seed, *gantt)
		}
	}
}

// runPlan really executes the plan for iters training iterations on the
// concurrent runtime, checking gradient equivalence against sequential
// training every iteration and the per-device event order against the
// simulated schedule. The loop honors ctx: -timeout and ctrl-C abort the
// worker goroutines mid-step.
func runPlan(ctx context.Context, master *dapple.Network, plan *dapple.Plan, simRes *dapple.ScheduleResult,
	pol dapple.SchedulePolicy, rc bool, iters int, seed int64, gantt bool) {
	nWorkers := 0
	for _, s := range plan.Stages {
		nWorkers += s.Replicas()
	}
	fmt.Printf("\nexecute: %d iterations, %d worker goroutines, policy %v, recompute %v\n",
		iters, nWorkers, pol, rc)

	ex, err := train.NewExecutor(plan, master, func() nn.Optimizer { return nn.NewAdam(2e-3) },
		train.ExecOptions{Policy: pol, Recompute: rc})
	if err != nil {
		fatalf("build executor: %v", err)
	}
	seq := master.Clone()
	seqOpt := nn.NewAdam(2e-3)

	rng := rand.New(rand.NewSource(seed + 1))
	proj := train.NewQuadrantProblem(rng, execInDim)

	var execRes *train.ExecResult
	for it := 1; it <= iters; it++ {
		micros := train.QuadrantBatches(rng, proj, plan.M(), plan.MicroBatch)
		execRes, err = ex.StepContext(ctx, micros)
		if err != nil {
			fatalf("execute iteration %d: %v", it, err)
		}
		seqLoss, err := train.SequentialStep(seq, micros, seqOpt)
		if err != nil {
			fatalf("sequential reference: %v", err)
		}
		drift := math.Abs(execRes.Loss - seqLoss)
		fmt.Printf("  iter %2d  loss %.4f  (sequential %.4f, drift %.1e, wall %s)\n",
			it, execRes.Loss, seqLoss, drift, stats.Seconds(execRes.WallTime))
		if drift > 1e-9 {
			fatalf("gradient equivalence violated at iteration %d (drift %g)", it, drift)
		}
	}
	if err := train.VerifyOrder(plan, simRes, execRes); err != nil {
		fatalf("sim-vs-real order mismatch: %v", err)
	}
	fmt.Printf("execute: per-device event order matches the simulated schedule; warmup K=%v, peak stash %v micro-batches\n",
		execRes.Warmup, execRes.MaxStash)
	fmt.Printf("execute: real wall %s/iter vs simulated %s/iter (synthetic device model)\n",
		stats.Seconds(execRes.WallTime), stats.Seconds(simRes.IterTime))
	if gantt {
		fmt.Println()
		fmt.Print(trace.Gantt(execRes.Trace, 120))
	}
}

// faultTolerance carries the session's fault-tolerance configuration from
// the flag layer into the distributed drive loop.
type faultTolerance struct {
	heartbeat   time.Duration
	ckptDir     string
	ckptEvery   int
	ckptKeep    int
	replan      dapple.ReplanFunc
	elastic     bool
	coordListen string
	minRanks    int
}

// runPlanDistributed executes the plan as a multi-process session: this
// process becomes the coordinator of the dapple-worker processes at addrs,
// shards the plan's devices across them (device d goes to worker
// Server(d) mod W, so one worker per server when counts line up), broadcasts
// the master weights, and gates each iteration on every worker's report
// while checking loss drift against the in-process sequential reference.
// Cross-process loss is compared at 1e-6 (collectives sum in a different
// order than the in-process ring, so bit-identity with the 1e-9 in-process
// bar is not expected).
//
// The session is survivable: a worker dying mid-run triggers a re-plan onto
// the survivors, a restore of the last consistent snapshot, and a rewind of
// the data feed — the drift gate still holds for every completed iteration.
// With -checkpoint-dir the session also resumes from the newest on-disk
// checkpoint, skipping the iterations it already completed.
func runPlanDistributed(ctx context.Context, master *dapple.Network, plan *dapple.Plan,
	pol dapple.SchedulePolicy, rc bool, iters int, seed int64, addrs []string, ft faultTolerance) {
	workers := len(addrs)
	deviceRanks := make([]int, plan.Cluster.NumDevices())
	for d := range deviceRanks {
		deviceRanks[d] = plan.Cluster.Server(dapple.DeviceID(d)) % workers
	}
	fmt.Printf("\nexecute: distributed session, %d worker processes, policy %v, recompute %v\n",
		workers, pol, rc)

	// An elastic coordinator must itself listen: joiners knock on it. The
	// default coordinator is dial-only.
	var t *transport.TCP
	if ft.elastic {
		var err error
		if t, err = transport.ListenTCP(ft.coordListen); err != nil {
			fatalf("coordinator listen: %v", err)
		}
	} else {
		t = transport.NewTCP()
	}
	t.SetRank(workers)
	defer t.Close()
	// Retrying dials make bring-up order-free: workers launched moments
	// after the coordinator are still joined, bounded by one dial window.
	dialCtx, dialCancel := context.WithTimeout(ctx, 30*time.Second)
	defer dialCancel()
	for r, addr := range addrs {
		if err := t.DialRetry(dialCtx, r, addr); err != nil {
			fatalf("dial worker %d at %s: %v", r, addr, err)
		}
	}
	peers := make([]int, workers)
	for r := range peers {
		peers[r] = r
	}
	if err := t.WaitPeers(ctx, peers); err != nil {
		fatalf("connect workers: %v", err)
	}

	// The sequential reference must start from the pre-restore weights:
	// NewCoordinator overwrites master from the checkpoint directory when
	// one is configured, and the reference fast-forwards through the
	// already-completed iterations instead.
	seq := master.Clone()
	seqOpt := nn.NewAdam(2e-3)

	opts := []train.SessionOption{
		train.WithReplan(ft.replan),
		train.WithStepTimeout(2 * time.Minute),
	}
	if ft.heartbeat > 0 {
		opts = append(opts, train.WithHeartbeat(ft.heartbeat, 10*ft.heartbeat))
	}
	if ft.ckptDir != "" {
		opts = append(opts, train.WithCheckpoint(ft.ckptDir, ft.ckptEvery))
	}
	if ft.ckptKeep > 0 {
		opts = append(opts, train.WithCheckpointRetention(ft.ckptKeep))
	}
	if ft.elastic {
		seedAddrs := make(map[int]string, workers)
		for r, addr := range addrs {
			seedAddrs[r] = addr
		}
		opts = append(opts, train.WithElastic(seedAddrs))
		// The joiner harness (and a human replacing a dead worker) scrapes
		// this line for the knock address.
		fmt.Printf("execute: elastic session; join with: dapple-worker -join %s\n", t.Addr())
	}
	coord, err := train.NewCoordinator(ctx, t, plan, master, train.OptSpec{Kind: "adam", LR: 2e-3},
		train.ExecOptions{Policy: pol, Recompute: rc}, deviceRanks, workers, opts...)
	if err != nil {
		fatalf("session handshake: %v", err)
	}

	// The data feed is deterministic from the seed and pre-generated, so a
	// recovery (or a restart from a checkpoint) can rewind or fast-forward
	// to any iteration.
	rng := rand.New(rand.NewSource(seed + 1))
	proj := train.NewQuadrantProblem(rng, execInDim)
	batches := make([][]train.Batch, iters)
	for it := range batches {
		batches[it] = train.QuadrantBatches(rng, proj, plan.M(), plan.MicroBatch)
	}
	resume := coord.CompletedSteps()
	if resume > 0 {
		fmt.Printf("execute: resuming from checkpoint at step %d\n", resume)
		if resume > iters {
			fatalf("checkpoint is at step %d, beyond -exec-iters %d", resume, iters)
		}
	}
	want := make([]float64, iters) // sequential reference losses, filled in step order
	for it := 0; it < resume; it++ {
		if want[it], err = train.SequentialStep(seq, batches[it], seqOpt); err != nil {
			fatalf("sequential reference: %v", err)
		}
	}
	seqDone := resume
	recoveries, failures, joins := 0, 0, 0
	for it := resume; it < iters; {
		if ft.minRanks > 0 && len(coord.Alive()) < ft.minRanks {
			fmt.Printf("execute: %d/%d ranks live; waiting for a joiner\n", len(coord.Alive()), ft.minRanks)
			if err := coord.AwaitJoin(ctx); err != nil {
				fatalf("await join: %v", err)
			}
		}
		start := time.Now()
		loss, err := coord.Step(ctx, batches[it])
		if err != nil {
			var rec *train.Recovered
			if errors.As(err, &rec) {
				recoveries++
				if recoveries > 2*workers {
					fatalf("session recovered %d times for %d workers; giving up", recoveries, workers)
				}
				joins += len(rec.Joined)
				switch {
				case rec.Cause == nil && len(rec.Joined) > 0:
					fmt.Printf("expand: admitted ranks %v at iteration %d; session now %v; rewound to iteration %d\n",
						rec.Joined, it+1, coord.Alive(), rec.Resume+1)
				case len(rec.Joined) > 0:
					failures++
					fmt.Printf("recover: lost ranks %v, admitted %v at iteration %d; rewound to iteration %d\n",
						rec.Lost, rec.Joined, it+1, rec.Resume+1)
				default:
					failures++
					fmt.Printf("recover: lost ranks %v at iteration %d; rewound to iteration %d\n",
						rec.Lost, it+1, rec.Resume+1)
				}
				it = rec.Resume
				continue
			}
			fatalf("distributed iteration %d: %v", it+1, err)
		}
		if it == seqDone {
			if want[it], err = train.SequentialStep(seq, batches[it], seqOpt); err != nil {
				fatalf("sequential reference: %v", err)
			}
			seqDone++
		}
		drift := math.Abs(loss - want[it])
		fmt.Printf("  iter %2d  loss %.4f  (sequential %.4f, drift %.1e, wall %s)\n",
			it+1, loss, want[it], drift, stats.Seconds(time.Since(start).Seconds()))
		if drift > 1e-6 {
			fatalf("distributed loss diverged at iteration %d (drift %g)", it+1, drift)
		}
		it++
	}
	st := t.Stats()
	if failures > 0 {
		fmt.Printf("execute: survived %d worker failure(s); all completed iterations match sequential within 1e-6\n", failures)
	}
	if joins > 0 {
		fmt.Printf("execute: admitted %d replacement worker(s) into the running session\n", joins)
	}
	fmt.Printf("execute: distributed losses match sequential within 1e-6; coordinator moved %s out / %s in\n",
		stats.Bytes(st.BytesSent), stats.Bytes(st.BytesRecv))
	if err := coord.Close(); err != nil {
		fatalf("close session: %v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
