package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMultiProcessLoopbackSmoke is the distributed-runtime end-to-end gate:
// it builds the real dapple and dapple-worker binaries, starts two worker
// processes and a coordinator process on 127.0.0.1, trains 3 iterations of a
// replicated plan across them, and requires the coordinator to report every
// iteration's loss within 1e-6 of the sequential reference (the binary
// exits non-zero past that drift). Three OS processes, real sockets — the
// same topology as the README walkthrough.
func TestMultiProcessLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dapple")
	wbin := filepath.Join(dir, "dapple-worker")
	for path, pkg := range map[string]string{bin: "dapple/cmd/dapple", wbin: "dapple/cmd/dapple-worker"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	addr0 := startWorker(t, wbin, 0)
	addr1 := startWorker(t, wbin, 1, "-peers", addr0)

	coord := exec.Command(bin,
		"-execute", "-config", "B", "-servers", "4", "-gbs", "64",
		"-exec-iters", "3", "-exec-workers", addr0+","+addr1)
	out, err := coord.CombinedOutput()
	if err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, out)
	}
	text := string(out)
	for it := 1; it <= 3; it++ {
		if !strings.Contains(text, fmt.Sprintf("iter  %d", it)) {
			t.Errorf("coordinator output missing iteration %d:\n%s", it, text)
		}
	}
	if !strings.Contains(text, "distributed losses match sequential within 1e-6") {
		t.Errorf("coordinator did not report loss equivalence:\n%s", text)
	}
}

// TestMultiProcessChaosRecoverySmoke is the fault-tolerance end-to-end gate:
// three worker processes train a pipeline, one of them is scripted (via
// -die-at-step) to kill itself in the middle of iteration 3, and the
// coordinator must detect the death, re-plan onto the two survivors, restore
// the latest on-disk checkpoint, rewind and finish — with every completed
// iteration's loss still within 1e-6 of the uninterrupted sequential
// reference (the binary exits non-zero past that drift).
func TestMultiProcessChaosRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dapple")
	wbin := filepath.Join(dir, "dapple-worker")
	for path, pkg := range map[string]string{bin: "dapple/cmd/dapple", wbin: "dapple/cmd/dapple-worker"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	addr0 := startWorker(t, wbin, 0)
	addr1 := startWorker(t, wbin, 1, "-peers", addr0, "-die-at-step", "2")
	addr2 := startWorker(t, wbin, 2, "-peers", addr0+","+addr1)

	coord := exec.Command(bin,
		"-execute", "-config", "B", "-servers", "3", "-gbs", "64",
		"-exec-iters", "4", "-exec-workers", addr0+","+addr1+","+addr2,
		"-heartbeat", "100ms",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"), "-checkpoint-every", "1")
	out, err := coord.CombinedOutput()
	if err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "recover: lost ranks [1]") {
		t.Errorf("coordinator never recovered from the scripted death:\n%s", text)
	}
	for it := 1; it <= 4; it++ {
		if !strings.Contains(text, fmt.Sprintf("iter  %d", it)) {
			t.Errorf("coordinator output missing iteration %d:\n%s", it, text)
		}
	}
	if !strings.Contains(text, "survived 1 worker failure(s)") {
		t.Errorf("coordinator did not report the survived failure:\n%s", text)
	}
	if !strings.Contains(text, "distributed losses match sequential within 1e-6") {
		t.Errorf("coordinator did not report loss equivalence:\n%s", text)
	}
}

// TestMultiProcessElasticSmoke is the elastic-membership end-to-end gate:
// two worker processes train a pipeline, one kills itself mid-run, the
// session shrinks onto the survivor and parks (-min-ranks 2); a THIRD
// process then joins the running session with -join, is granted a fresh
// rank, receives the live state stream, and the session re-expands and
// finishes — every completed iteration within 1e-6 of the sequential
// reference (the binary exits non-zero past that drift).
func TestMultiProcessElasticSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dapple")
	wbin := filepath.Join(dir, "dapple-worker")
	for path, pkg := range map[string]string{bin: "dapple/cmd/dapple", wbin: "dapple/cmd/dapple-worker"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	addr0 := startWorker(t, wbin, 0)
	addr1 := startWorker(t, wbin, 1, "-peers", addr0, "-die-at-step", "2")

	coord := exec.Command(bin,
		"-execute", "-config", "B", "-servers", "2", "-gbs", "64",
		"-exec-iters", "4", "-exec-workers", addr0+","+addr1,
		"-heartbeat", "100ms",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"), "-checkpoint-every", "1", "-checkpoint-keep", "2",
		"-elastic", "-min-ranks", "2")
	stdout, err := coord.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	coord.Stderr = os.Stderr
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	// Stream the coordinator's output: the join address appears at session
	// start, and the replacement is launched only once the session has
	// shrunk and is parked waiting — so the join deterministically lands
	// after the death.
	var text strings.Builder
	joinAddr := make(chan string, 1)
	waiting := make(chan struct{})
	coordDone := make(chan error, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		waited := false
		for sc.Scan() {
			line := sc.Text()
			text.WriteString(line + "\n")
			if _, addr, ok := strings.Cut(line, "dapple-worker -join "); ok {
				joinAddr <- strings.TrimSpace(addr)
			}
			if !waited && strings.Contains(line, "waiting for a joiner") {
				waited = true
				close(waiting)
			}
		}
		coordDone <- coord.Wait()
	}()

	var knock string
	select {
	case knock = <-joinAddr:
	case <-time.After(60 * time.Second):
		coord.Process.Kill()
		t.Fatal("coordinator never printed its join address")
	}
	select {
	case <-waiting:
	case <-time.After(60 * time.Second):
		coord.Process.Kill()
		t.Fatal("coordinator never shrank and parked for a joiner")
	}

	joiner := exec.Command(wbin, "-join", knock, "-listen", "127.0.0.1:0")
	jout, err := joiner.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	joiner.Stderr = os.Stderr
	if err := joiner.Start(); err != nil {
		t.Fatal(err)
	}
	jtext := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(jout)
		var b strings.Builder
		for sc.Scan() {
			b.WriteString(sc.Text() + "\n")
		}
		jtext <- b.String()
	}()

	select {
	case err := <-coordDone:
		if err != nil {
			t.Fatalf("coordinator failed: %v\n%s", err, text.String())
		}
	case <-time.After(120 * time.Second):
		coord.Process.Kill()
		joiner.Process.Kill()
		t.Fatalf("coordinator never finished:\n%s", text.String())
	}
	if err := joiner.Wait(); err != nil {
		t.Fatalf("joiner exited: %v\n%s", err, <-jtext)
	}

	out := text.String()
	if !strings.Contains(out, "recover: lost ranks [1]") {
		t.Errorf("coordinator never recovered from the scripted death:\n%s", out)
	}
	if !strings.Contains(out, "expand: admitted ranks [3]") {
		t.Errorf("coordinator never admitted the replacement:\n%s", out)
	}
	for it := 1; it <= 4; it++ {
		if !strings.Contains(out, fmt.Sprintf("iter  %d", it)) {
			t.Errorf("coordinator output missing iteration %d:\n%s", it, out)
		}
	}
	if !strings.Contains(out, "distributed losses match sequential within 1e-6") {
		t.Errorf("coordinator did not report loss equivalence:\n%s", out)
	}
	if jo := <-jtext; !strings.Contains(jo, "admitted as rank 3") {
		t.Errorf("joiner never reported admission:\n%s", jo)
	}
}

// startWorker launches one dapple-worker process and returns the address it
// reports listening on. The process is killed (and its exit checked) at test
// cleanup.
func startWorker(t *testing.T, bin string, rank int, extra ...string) string {
	t.Helper()
	args := append([]string{"-rank", fmt.Sprint(rank), "-listen", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				addrCh <- strings.TrimSpace(addr)
			}
		}
		done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exited: %v", rank, err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Errorf("worker %d never exited; killed", rank)
		}
	})
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("worker %d never reported its address", rank)
		return ""
	}
}
