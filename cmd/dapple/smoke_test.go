package main

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestMultiProcessLoopbackSmoke is the distributed-runtime end-to-end gate:
// it builds the real dapple and dapple-worker binaries, starts two worker
// processes and a coordinator process on 127.0.0.1, trains 3 iterations of a
// replicated plan across them, and requires the coordinator to report every
// iteration's loss within 1e-6 of the sequential reference (the binary
// exits non-zero past that drift). Three OS processes, real sockets — the
// same topology as the README walkthrough.
func TestMultiProcessLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dapple")
	wbin := filepath.Join(dir, "dapple-worker")
	for path, pkg := range map[string]string{bin: "dapple/cmd/dapple", wbin: "dapple/cmd/dapple-worker"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	addr0 := startWorker(t, wbin, 0)
	addr1 := startWorker(t, wbin, 1, "-peers", addr0)

	coord := exec.Command(bin,
		"-execute", "-config", "B", "-servers", "4", "-gbs", "64",
		"-exec-iters", "3", "-exec-workers", addr0+","+addr1)
	out, err := coord.CombinedOutput()
	if err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, out)
	}
	text := string(out)
	for it := 1; it <= 3; it++ {
		if !strings.Contains(text, fmt.Sprintf("iter  %d", it)) {
			t.Errorf("coordinator output missing iteration %d:\n%s", it, text)
		}
	}
	if !strings.Contains(text, "distributed losses match sequential within 1e-6") {
		t.Errorf("coordinator did not report loss equivalence:\n%s", text)
	}
}

// TestMultiProcessChaosRecoverySmoke is the fault-tolerance end-to-end gate:
// three worker processes train a pipeline, one of them is scripted (via
// -die-at-step) to kill itself in the middle of iteration 3, and the
// coordinator must detect the death, re-plan onto the two survivors, restore
// the latest on-disk checkpoint, rewind and finish — with every completed
// iteration's loss still within 1e-6 of the uninterrupted sequential
// reference (the binary exits non-zero past that drift).
func TestMultiProcessChaosRecoverySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process smoke skipped in -short")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "dapple")
	wbin := filepath.Join(dir, "dapple-worker")
	for path, pkg := range map[string]string{bin: "dapple/cmd/dapple", wbin: "dapple/cmd/dapple-worker"} {
		out, err := exec.Command("go", "build", "-o", path, pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, out)
		}
	}

	addr0 := startWorker(t, wbin, 0)
	addr1 := startWorker(t, wbin, 1, "-peers", addr0, "-die-at-step", "2")
	addr2 := startWorker(t, wbin, 2, "-peers", addr0+","+addr1)

	coord := exec.Command(bin,
		"-execute", "-config", "B", "-servers", "3", "-gbs", "64",
		"-exec-iters", "4", "-exec-workers", addr0+","+addr1+","+addr2,
		"-heartbeat", "100ms",
		"-checkpoint-dir", filepath.Join(dir, "ckpt"), "-checkpoint-every", "1")
	out, err := coord.CombinedOutput()
	if err != nil {
		t.Fatalf("coordinator failed: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "recover: lost ranks [1]") {
		t.Errorf("coordinator never recovered from the scripted death:\n%s", text)
	}
	for it := 1; it <= 4; it++ {
		if !strings.Contains(text, fmt.Sprintf("iter  %d", it)) {
			t.Errorf("coordinator output missing iteration %d:\n%s", it, text)
		}
	}
	if !strings.Contains(text, "survived 1 worker failure(s)") {
		t.Errorf("coordinator did not report the survived failure:\n%s", text)
	}
	if !strings.Contains(text, "distributed losses match sequential within 1e-6") {
		t.Errorf("coordinator did not report loss equivalence:\n%s", text)
	}
}

// startWorker launches one dapple-worker process and returns the address it
// reports listening on. The process is killed (and its exit checked) at test
// cleanup.
func startWorker(t *testing.T, bin string, rank int, extra ...string) string {
	t.Helper()
	args := append([]string{"-rank", fmt.Sprint(rank), "-listen", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if _, addr, ok := strings.Cut(line, "listening on "); ok {
				addrCh <- strings.TrimSpace(addr)
			}
		}
		done <- cmd.Wait()
	}()
	t.Cleanup(func() {
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("worker %d exited: %v", rank, err)
			}
		case <-time.After(30 * time.Second):
			cmd.Process.Kill()
			t.Errorf("worker %d never exited; killed", rank)
		}
	})
	select {
	case addr := <-addrCh:
		return addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("worker %d never reported its address", rank)
		return ""
	}
}
