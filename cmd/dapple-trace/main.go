// Command dapple-trace renders schedule timelines for a planned model: an
// ASCII Gantt chart per scheduling policy, the per-stage memory curves of
// Fig. 3(c), and optional Chrome trace JSON.
//
// Usage:
//
//	dapple-trace -model GNMT-16 -config A -m 8
//	dapple-trace -model BERT-48 -config B -policies gpipe,pa,pb -out trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dapple/internal/hardware"
	"dapple/internal/model"
	"dapple/internal/planner"
	"dapple/internal/schedule"
	"dapple/internal/stats"
	"dapple/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "GNMT-16", "zoo model name")
		config    = flag.String("config", "A", "hardware config: A, B or C")
		servers   = flag.Int("servers", 2, "server count")
		m         = flag.Int("m", 0, "micro-batch count override")
		policies  = flag.String("policies", "gpipe,pa", "comma-separated: gpipe, pa, pb")
		width     = flag.Int("width", 110, "gantt width in columns")
		out       = flag.String("out", "", "write <out>.<policy>.json Chrome traces")
	)
	flag.Parse()

	mod := model.ByName(*modelName)
	if mod == nil {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(1)
	}
	var c hardware.Cluster
	switch strings.ToUpper(*config) {
	case "A":
		c = hardware.ConfigA(*servers)
	case "B":
		c = hardware.ConfigB(*servers)
	case "C":
		c = hardware.ConfigC(*servers)
	default:
		fmt.Fprintf(os.Stderr, "unknown config %q\n", *config)
		os.Exit(1)
	}

	pr, err := planner.Plan(mod, c, planner.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("plan: %v\n\n", pr)

	polMap := map[string]schedule.Policy{
		"gpipe": schedule.GPipe, "pa": schedule.DapplePA, "pb": schedule.DapplePB,
	}
	for _, name := range strings.Split(*policies, ",") {
		pol, ok := polMap[strings.TrimSpace(strings.ToLower(name))]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown policy %q\n", name)
			os.Exit(1)
		}
		res, err := schedule.Run(pr.Plan, schedule.Options{
			Policy: pol, M: *m, Recompute: pr.NeedsRecompute, MemLimit: -1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("--- %v: %s/iter, avg peak %s ---\n",
			pol, stats.Seconds(res.IterTime), stats.BytesF(res.AvgPeakMem))
		fmt.Print(trace.Gantt(res.Sim, *width))
		for i := range pr.Plan.Stages {
			curve, peak := trace.MemCurve(res.MemTrace(i), res.IterTime, *width)
			fmt.Printf("stage%d mem (peak %9s) %s\n", i, stats.Bytes(peak), curve)
		}
		fmt.Println()
		if *out != "" {
			path := fmt.Sprintf("%s.%v.json", *out, pol)
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := trace.WriteChrome(f, res.Sim); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
