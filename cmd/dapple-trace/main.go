// Command dapple-trace renders schedule timelines for a planned model: an
// ASCII Gantt chart per scheduling policy, the per-stage memory curves of
// Fig. 3(c), and optional Chrome trace JSON. Planning runs through the
// engine API, so -strategy selects any registered planner.
//
// Usage:
//
//	dapple-trace -model GNMT-16 -config A -m 8
//	dapple-trace -model BERT-48 -config B -policies gpipe,pa,pb -out trace
//	dapple-trace -model GNMT-16 -config B -strategy pipedream
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dapple"
	"dapple/internal/cliutil"
	"dapple/internal/stats"
	"dapple/internal/trace"
)

func main() {
	var (
		modelName = flag.String("model", "GNMT-16", "zoo model name")
		config    = flag.String("config", "A", cliutil.ConfigHelp)
		servers   = flag.Int("servers", 0, "server count (default: 2 for A, 16 for B/C)")
		strategy  = flag.String("strategy", "dapple", "planning strategy")
		m         = flag.Int("m", 0, "micro-batch count override")
		policies  = flag.String("policies", "gpipe,pa", "comma-separated: gpipe, pa, pb")
		width     = flag.Int("width", 110, "gantt width in columns")
		timeout   = flag.Duration("timeout", 0, "abort after this long (0 = no limit)")
		out       = flag.String("out", "", "write <out>.<policy>.json Chrome traces")
	)
	planFlags := cliutil.RegisterPlanFlags()
	profFlags := cliutil.RegisterProfileFlags()
	flag.Parse()

	stopProf, err := profFlags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	mod := dapple.ModelByName(*modelName)
	if mod == nil {
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *modelName)
		os.Exit(1)
	}
	c, err := cliutil.PickConfig(*config, *servers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	eng, err := dapple.NewEngine(
		dapple.WithCluster(c),
		dapple.WithStrategy(*strategy),
		dapple.WithPlanOptions(planFlags.Apply(dapple.PlanOptions{})),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ctx, cancel := cliutil.RootContext(*timeout)
	defer cancel()

	pr, err := eng.Plan(ctx, mod)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("plan: %v\n\n", pr)

	for _, name := range strings.Split(*policies, ",") {
		pol, err := cliutil.ParsePolicy(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := eng.Simulate(ctx, pr.Plan, dapple.ScheduleOptions{
			Policy: pol, M: *m, Recompute: pr.NeedsRecompute, MemLimit: -1,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("--- %v: %s/iter, avg peak %s ---\n",
			pol, stats.Seconds(res.IterTime), stats.BytesF(res.AvgPeakMem))
		fmt.Print(trace.Gantt(res.Sim, *width))
		for i := range pr.Plan.Stages {
			curve, peak := trace.MemCurve(res.MemTrace(i), res.IterTime, *width)
			fmt.Printf("stage%d mem (peak %9s) %s\n", i, stats.Bytes(peak), curve)
		}
		fmt.Println()
		if *out != "" {
			path := fmt.Sprintf("%s.%v.json", *out, pol)
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := trace.WriteChrome(f, res.Sim); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote %s\n\n", path)
		}
	}
}
