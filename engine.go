package dapple

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dapple/internal/schedule"
)

// Engine is the context-aware front door to planning and simulation: one
// cluster, one strategy, and a concurrency-safe plan cache keyed by
// (model, cluster, batch geometry, strategy). It is safe for concurrent use;
// identical in-flight Plan calls are coalesced so repeated planning traffic
// runs each search once.
//
// Construct it with functional options:
//
//	eng, err := dapple.NewEngine(
//		dapple.WithCluster(dapple.ConfigA(2)),
//		dapple.WithStrategy("dapple"),
//	)
//	pr, err := eng.Plan(ctx, dapple.ModelByName("BERT-48"))
//	res, err := eng.SimulatePlan(ctx, pr)
type Engine struct {
	cluster    Cluster
	hasCluster bool
	strat      Strategy
	policy     SchedulePolicy
	hasPolicy  bool
	progress   func(Progress)
	planOpts   PlanOptions
	cacheCap   int
	measure    *MeasureOptions // non-nil: ProfileNetwork measures, not estimates

	mu        sync.Mutex
	cache     map[planKey]*PlanResult
	order     []planKey // least-recently-used first
	inflight  map[planKey]*planCall
	hits      uint64
	misses    uint64
	coalesced uint64
}

// Progress is one engine lifecycle event, delivered to the WithProgress
// callback: planning started/finished/failed, a cache hit, or a simulation
// boundary. Callbacks run synchronously on the calling goroutine.
type Progress struct {
	// Phase is one of "plan.start", "plan.cache", "plan.coalesced",
	// "plan.done", "plan.error", "sim.start", "sim.done", "sim.error",
	// "exec.start", "exec.done", "exec.error".
	Phase    string
	Strategy string
	Model    string
	Cluster  string
	GBS      int
	Elapsed  time.Duration
	Err      error
}

// EngineOption configures an Engine under construction.
type EngineOption func(*Engine) error

// WithCluster sets the cluster every Plan and Simulate call targets.
// Required.
func WithCluster(c Cluster) EngineOption {
	return func(e *Engine) error {
		if err := c.Validate(); err != nil {
			return err
		}
		e.cluster, e.hasCluster = c, true
		return nil
	}
}

// WithStrategy selects the planning strategy by registry name (see
// Strategies). The default is "dapple".
func WithStrategy(name string) EngineOption {
	return func(e *Engine) error {
		s, ok := StrategyByName(name)
		if !ok {
			return fmt.Errorf("dapple: unknown strategy %q (have %v)", name, StrategyNames())
		}
		e.strat = s
		return nil
	}
}

// WithStrategyImpl plugs in a Strategy value directly, registered or not.
func WithStrategyImpl(s Strategy) EngineOption {
	return func(e *Engine) error {
		if s == nil {
			return errors.New("dapple: nil strategy")
		}
		e.strat = s
		return nil
	}
}

// WithPolicy overrides the strategy's recommended schedule policy in
// SimulatePlan (e.g. force DapplePB everywhere).
func WithPolicy(p SchedulePolicy) EngineOption {
	return func(e *Engine) error {
		e.policy, e.hasPolicy = p, true
		return nil
	}
}

// WithProgress installs a callback for engine lifecycle events. The callback
// must be safe for concurrent use when the engine is shared.
func WithProgress(fn func(Progress)) EngineOption {
	return func(e *Engine) error {
		e.progress = fn
		return nil
	}
}

// WithPlanOptions sets the default search options Plan uses; PlanWith
// overrides them per call. The options carry the planner's parallelism and
// pruning knobs too (PlanOptions.Workers, PlanOptions.NoPrune).
func WithPlanOptions(opts PlanOptions) EngineOption {
	return func(e *Engine) error {
		e.planOpts = opts
		return nil
	}
}

// WithPlannerWorkers bounds the goroutines the planner search fans out over
// first-stage split points (0 = GOMAXPROCS, 1 = sequential). The chosen plan
// is identical for every value; only wall-clock time changes. It edits the
// engine's default plan options, so combine it with WithPlanOptions by
// passing it afterwards.
func WithPlannerWorkers(n int) EngineOption {
	return func(e *Engine) error {
		e.planOpts.Workers = n
		return nil
	}
}

// WithCacheSize bounds the plan cache to n entries (default 128); n <= 0
// disables caching entirely.
func WithCacheSize(n int) EngineOption {
	return func(e *Engine) error {
		e.cacheCap = n
		return nil
	}
}

// NewEngine builds an Engine. WithCluster is mandatory; the strategy
// defaults to the DAPPLE planner.
func NewEngine(opts ...EngineOption) (*Engine, error) {
	e := &Engine{
		cacheCap: 128,
		cache:    map[planKey]*PlanResult{},
		inflight: map[planKey]*planCall{},
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	if !e.hasCluster {
		return nil, errors.New("dapple: NewEngine requires WithCluster")
	}
	if e.strat == nil {
		s, ok := StrategyByName("dapple")
		if !ok {
			return nil, errors.New("dapple: default strategy not registered")
		}
		e.strat = s
	}
	return e, nil
}

// Strategy returns the engine's planning strategy.
func (e *Engine) Strategy() Strategy { return e.strat }

// Cluster returns the engine's target cluster.
func (e *Engine) Cluster() Cluster { return e.cluster }

// planKey identifies one cacheable planning request. Cluster and PlanOptions
// are flat comparable structs; the model contributes its profile fingerprint
// so a re-profiled architecture with a reused name does not alias.
type planKey struct {
	strategy string
	model    uint64
	cluster  Cluster
	opts     PlanOptions
}

// planCall coalesces concurrent identical Plan calls (singleflight).
type planCall struct {
	done chan struct{} // closed when res/err are set
	res  *PlanResult
	err  error
}

// CacheStats reports plan-cache effectiveness. Every Plan call that reaches
// the cache and completes lands in exactly one counter: Hits (served from
// cache), Misses (ran the search), or Coalesced (waited on an identical
// in-flight search). Calls that abort before or without a cache outcome —
// rejected input, an already-expired context, or a waiter whose own context
// expires mid-wait — are not counted.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Coalesced uint64
	Entries   int
}

// CacheStats returns a snapshot of the plan cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{Hits: e.hits, Misses: e.misses, Coalesced: e.coalesced, Entries: len(e.cache)}
}

// ClearCache drops every cached plan.
func (e *Engine) ClearCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = map[planKey]*PlanResult{}
	e.order = nil
}

func (e *Engine) emit(p Progress) {
	if e.progress != nil {
		e.progress(p)
	}
}

func (e *Engine) progressBase(phase string, gbs int) Progress {
	return Progress{Phase: phase, Strategy: e.strat.Name(), Cluster: e.cluster.Name, GBS: gbs}
}

// Plan searches for the engine strategy's plan of m on the engine's cluster
// using the engine's default options. Results are cached: a repeated
// identical call returns without re-running the search. Cached results are
// shared — treat them as read-only.
func (e *Engine) Plan(ctx context.Context, m *Model) (*PlanResult, error) {
	return e.PlanWith(ctx, m, e.planOpts)
}

// PlanWith is Plan with per-call search options.
func (e *Engine) PlanWith(ctx context.Context, m *Model, opts PlanOptions) (*PlanResult, error) {
	if m == nil {
		return nil, errors.New("dapple: Plan of a nil model")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Normalize so an implicitly-defaulted request and one spelling out the
	// same defaults hit one cache key (and coalesce to one search).
	opts = opts.Normalize(m.DefaultGBS)
	key := planKey{strategy: e.strat.Name(), model: m.Fingerprint(), cluster: e.cluster, opts: opts}

	for {
		e.mu.Lock()
		if res, ok := e.cache[key]; ok {
			e.hits++
			e.touch(key)
			e.mu.Unlock()
			pe := e.progressBase("plan.cache", opts.GBS)
			pe.Model = m.Name
			e.emit(pe)
			return res, nil
		}
		call, running := e.inflight[key]
		if !running {
			call = &planCall{done: make(chan struct{})}
			e.inflight[key] = call
			e.misses++
			e.mu.Unlock()
			return e.lead(ctx, m, opts, key, call)
		}
		e.mu.Unlock()

		// Another goroutine is already running this exact search; wait for it.
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-call.done:
		}
		if call.err == nil {
			e.mu.Lock()
			e.coalesced++
			e.mu.Unlock()
			pe := e.progressBase("plan.coalesced", opts.GBS)
			pe.Model = m.Name
			e.emit(pe)
			return call.res, nil
		}
		// The leader may have failed only because its own context expired;
		// a waiter whose context is still live retries with a fresh search.
		if errors.Is(call.err, context.Canceled) || errors.Is(call.err, context.DeadlineExceeded) {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			continue
		}
		e.mu.Lock()
		e.coalesced++
		e.mu.Unlock()
		return nil, call.err
	}
}

// lead runs the strategy search on behalf of every coalesced caller. The
// result is published from a deferred block so that even a panicking custom
// strategy clears the inflight key and unblocks waiters instead of wedging
// the engine for that key forever.
func (e *Engine) lead(ctx context.Context, m *Model, opts PlanOptions, key planKey, call *planCall) (res *PlanResult, err error) {
	start := time.Now()
	pe := e.progressBase("plan.start", opts.GBS)
	pe.Model = m.Name
	e.emit(pe)

	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("dapple: strategy %q panicked: %v", e.strat.Name(), r)
		}
		if err == nil && res == nil {
			// A broken custom strategy returning (nil, nil) must surface here,
			// not as a nil deref in the caller (and never enter the cache).
			err = fmt.Errorf("dapple: strategy %q returned no result and no error", e.strat.Name())
		}
		e.mu.Lock()
		delete(e.inflight, key)
		if err == nil {
			e.store(key, res)
		}
		e.mu.Unlock()
		call.res, call.err = res, err
		close(call.done)

		pe.Elapsed = time.Since(start)
		if err != nil {
			pe.Phase, pe.Err = "plan.error", err
		} else {
			pe.Phase = "plan.done"
		}
		e.emit(pe)
	}()
	return e.strat.Plan(ctx, m, e.cluster, opts)
}

// store inserts under e.mu, evicting the least-recently-used entry at cap.
func (e *Engine) store(key planKey, res *PlanResult) {
	if e.cacheCap <= 0 {
		return
	}
	if _, ok := e.cache[key]; !ok && len(e.cache) >= e.cacheCap {
		oldest := e.order[0]
		e.order = e.order[1:]
		delete(e.cache, oldest)
	}
	e.cache[key] = res
	e.touch(key)
}

// touch marks key most-recently-used under e.mu.
func (e *Engine) touch(key planKey) {
	for i, k := range e.order {
		if k == key {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.order = append(e.order, key)
}

// Simulate executes one training iteration of the plan on the discrete-event
// runtime under ctx, reporting iteration time, throughput, per-device peak
// memory and OOM conditions.
func (e *Engine) Simulate(ctx context.Context, p *Plan, opts ScheduleOptions) (*ScheduleResult, error) {
	if p == nil {
		return nil, errors.New("dapple: Simulate of a nil plan")
	}
	if p.Model == nil {
		return nil, errors.New("dapple: Simulate of a plan with no model")
	}
	start := time.Now()
	pe := e.progressBase("sim.start", p.GBS)
	pe.Model = p.Model.Name
	// The plan carries its own cluster (it may have been loaded from JSON
	// against different hardware); label the event with what actually runs.
	pe.Cluster = p.Cluster.Name
	e.emit(pe)
	res, err := schedule.RunContext(ctx, p, opts)
	pe.Elapsed = time.Since(start)
	if err != nil {
		pe.Phase, pe.Err = "sim.error", err
	} else {
		pe.Phase = "sim.done"
	}
	e.emit(pe)
	return res, err
}

// SimulatePlan simulates a planning result under the strategy's recommended
// schedule policy and re-computation setting, or the engine's WithPolicy
// override when one is set.
func (e *Engine) SimulatePlan(ctx context.Context, pr *PlanResult) (*ScheduleResult, error) {
	if pr == nil {
		return nil, errors.New("dapple: SimulatePlan of a nil result")
	}
	pol := pr.Policy
	if e.hasPolicy {
		pol = e.policy
	}
	return e.Simulate(ctx, pr.Plan, ScheduleOptions{Policy: pol, Recompute: pr.NeedsRecompute})
}
