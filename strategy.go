package dapple

import (
	"dapple/internal/strategy"
)

// Strategy is a pluggable planner: it turns (model, cluster, options) into a
// PlanResult under a context. The DAPPLE planner and every baseline of the
// paper's evaluation implement it, all returning the same PlanResult shape,
// so strategies compare apples-to-apples through one Engine.
//
// Implementations must be safe for concurrent use and must return promptly
// with ctx.Err() once the context is cancelled or past its deadline. Custom
// strategies become addressable by name via RegisterStrategy.
type Strategy = strategy.Strategy

// Strategies returns every registered strategy, sorted by name. The built-in
// set is:
//
//	dapple     the paper's planner (§IV): DP search over partitions,
//	           replication and placement, re-ranked on the simulator
//	dp         pure data parallelism (Fig. 12 baseline)
//	gpipe      GPipe/torchgpipe even block partition, flood-then-drain
//	pipedream  PipeDream's hierarchical planner under synchronous training
//	straight   balanced one-stage-per-device pipeline (Fig. 14(a))
func Strategies() []Strategy { return strategy.All() }

// StrategyNames returns the sorted names of all registered strategies.
func StrategyNames() []string { return strategy.Names() }

// StrategyByName returns the named strategy from the registry.
func StrategyByName(name string) (Strategy, bool) { return strategy.Lookup(name) }

// RegisterStrategy adds a custom strategy to the process-wide registry,
// making it available to WithStrategy and the -strategy command flags. It
// fails on empty or duplicate names.
func RegisterStrategy(s Strategy) error { return strategy.Register(s) }
